#include "lvm/tiering.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace mm::lvm {

TierDirector::TierDirector(const Volume* volume, TierOptions options)
    : volume_(volume), options_(options) {
  assert(options_.cell_sectors > 0);
  assert(options_.promote_touches > 0);
  assert(options_.data_base >= options_.hot_sectors);
  // Carve the hot region into cell-sized slots, skipping any that would
  // straddle a member-disk boundary (volume requests must not).
  for (uint64_t base = 0; base + options_.cell_sectors <= options_.hot_sectors;
       base += options_.cell_sectors) {
    const auto first = volume_->Resolve(base);
    const auto last = volume_->Resolve(base + options_.cell_sectors - 1);
    if (!first.ok() || !last.ok() || first->disk != last->disk) continue;
    free_slots_.push_back(base);
  }
  // Pop from the back in address order: the lowest (outermost, fastest
  // zones) slots are handed out first.
  std::sort(free_slots_.rbegin(), free_slots_.rend());
  slot_count_ = free_slots_.size();
}

uint32_t TierDirector::CellSpan(uint64_t cell) const {
  const uint64_t base = CellBase(cell);
  const uint64_t end = options_.data_base + options_.data_sectors;
  const uint64_t span = std::min<uint64_t>(options_.cell_sectors, end - base);
  return static_cast<uint32_t>(span);
}

void TierDirector::TouchLru(uint64_t cell) {
  auto it = lru_pos_.find(cell);
  if (it == lru_pos_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second);
}

void TierDirector::Observe(const disk::IoRequest& r,
                           std::vector<uint64_t>* promote, double now_ms) {
  const size_t before = promote->size();
  const uint64_t data_end = options_.data_base + options_.data_sectors;
  const uint64_t lo = std::max(r.lbn, options_.data_base);
  const uint64_t hi = std::min(r.lbn + r.sectors, data_end);
  if (lo >= hi) return;
  const uint64_t first = CellOf(lo);
  const uint64_t last = CellOf(hi - 1);
  for (uint64_t cell = first; cell <= last; ++cell) {
    if (hot_.count(cell)) {
      TouchLru(cell);
      continue;
    }
    if (migrating_.count(cell)) continue;
    if (++touches_[cell] >= options_.promote_touches) {
      touches_.erase(cell);
      migrating_.insert(cell);
      promote->push_back(cell);
    }
  }
  if (trace_ != nullptr && now_ms >= 0) {
    for (size_t i = before; i < promote->size(); ++i) {
      trace_->Instant(now_ms, 0, obs::kBackground, "tier", "tier.promote",
                      static_cast<double>((*promote)[i]));
    }
  }
}

void TierDirector::Redirect(const disk::IoRequest& r,
                            std::vector<Redirected>* out) {
  const uint64_t data_end = options_.data_base + options_.data_sectors;
  const uint64_t end = r.lbn + r.sectors;
  // Walk the request in spans whose target mapping is contiguous; a new
  // subrun starts whenever the next sector's target breaks contiguity.
  Redirected cur;
  bool open = false;
  uint64_t cur_end = 0;  // target LBN one past the open subrun
  auto flush = [&] {
    if (!open) return;
    out->push_back(cur);
    open = false;
  };
  uint64_t lbn = r.lbn;
  while (lbn < end) {
    uint64_t target = lbn;
    uint64_t span;  // sectors sharing this span's contiguous target
    if (lbn < options_.data_base || lbn >= data_end) {
      span = lbn < options_.data_base
                 ? std::min(end, options_.data_base) - lbn
                 : end - lbn;
    } else {
      const uint64_t cell = CellOf(lbn);
      const uint64_t cell_end =
          std::min<uint64_t>(CellBase(cell) + CellSpan(cell), data_end);
      span = std::min(end, cell_end) - lbn;
      auto it = hot_.find(cell);
      if (it != hot_.end()) {
        target = it->second + (lbn - CellBase(cell));
        stats_.redirected_sectors += span;
      } else {
        stats_.cold_sectors += span;
      }
    }
    if (open && target == cur_end) {
      cur.req.sectors += static_cast<uint32_t>(span);
      cur_end += span;
    } else {
      flush();
      cur.req = r;
      cur.req.lbn = target;
      cur.req.sectors = static_cast<uint32_t>(span);
      cur.src_lbn = lbn;
      cur_end = target + span;
      open = true;
    }
    lbn += span;
  }
  flush();
}

bool TierDirector::StartMigration(uint64_t cell, disk::IoRequest* cold_read,
                                  double now_ms) {
  if (hot_.count(cell) || slot_count_ == 0) {
    migrating_.erase(cell);
    return false;
  }
  cold_read->lbn = CellBase(cell);
  cold_read->sectors = CellSpan(cell);
  cold_read->hint = disk::SchedulingHint::kReorderFreely;
  cold_read->order_group = 0;
  ++stats_.migration_reads;
  if (trace_ != nullptr && now_ms >= 0) {
    trace_->Instant(now_ms, 0, obs::kBackground, "tier", "tier.migrate_start",
                    static_cast<double>(cell));
  }
  return true;
}

void TierDirector::FinishMigration(uint64_t cell, double now_ms) {
  if (trace_ != nullptr && now_ms >= 0) {
    trace_->Instant(now_ms, 0, obs::kBackground, "tier", "tier.migrate_done",
                    static_cast<double>(cell));
  }
  migrating_.erase(cell);
  if (hot_.count(cell)) return;
  if (free_slots_.empty()) {
    // Demote the LRU hot cell: drop its redirect and reuse the slot. The
    // cold copy is authoritative, so no writeback is needed.
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(victim);
    free_slots_.push_back(hot_[victim]);
    hot_.erase(victim);
    ++stats_.demotions;
  }
  const uint64_t slot = free_slots_.back();
  free_slots_.pop_back();
  hot_[cell] = slot;
  lru_.push_front(cell);
  lru_pos_[cell] = lru_.begin();
  ++stats_.promotions;
}

void TierDirector::AbandonMigration(uint64_t cell, double now_ms) {
  if (trace_ != nullptr && now_ms >= 0) {
    trace_->Instant(now_ms, 0, obs::kBackground, "tier",
                    "tier.migrate_abandon", static_cast<double>(cell));
  }
  migrating_.erase(cell);
  ++stats_.migration_failures;
}

}  // namespace mm::lvm
