#include "lvm/volume.h"

#include <algorithm>
#include <string>

namespace mm::lvm {

Volume::Volume(const std::vector<disk::DiskSpec>& specs) {
  uint64_t lbn = 0;
  max_adjacency_ = UINT32_MAX;
  for (const auto& spec : specs) {
    disks_.push_back(std::make_unique<disk::Disk>(spec));
    first_lbn_.push_back(lbn);
    lbn += disks_.back()->geometry().total_sectors();
    max_adjacency_ = std::min(max_adjacency_, spec.AdjacentBlocks());
  }
  first_lbn_.push_back(lbn);
  total_sectors_ = lbn;
}

Result<Volume::Location> Volume::Resolve(uint64_t volume_lbn) const {
  if (volume_lbn >= total_sectors_) {
    return Status::OutOfRange("volume LBN " + std::to_string(volume_lbn) +
                              " beyond capacity " +
                              std::to_string(total_sectors_));
  }
  // Disks are few; linear scan over the boundary table.
  uint32_t d = 0;
  while (volume_lbn >= first_lbn_[d + 1]) ++d;
  return Location{d, volume_lbn - first_lbn_[d]};
}

uint64_t Volume::ToVolumeLbn(uint32_t disk_index, uint64_t disk_lbn) const {
  return first_lbn_[disk_index] + disk_lbn;
}

Result<uint64_t> Volume::GetAdjacent(uint64_t volume_lbn,
                                     uint32_t step) const {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(volume_lbn));
  MM_ASSIGN_OR_RETURN(
      uint64_t adj, disks_[loc.disk]->geometry().AdjacentLbn(loc.lbn, step));
  return ToVolumeLbn(loc.disk, adj);
}

Result<TrackBoundaries> Volume::GetTrackBoundaries(
    uint64_t volume_lbn) const {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(volume_lbn));
  const disk::Geometry& geo = disks_[loc.disk]->geometry();
  const uint64_t track = geo.TrackOfLbn(loc.lbn);
  TrackBoundaries tb;
  tb.length = geo.TrackLength(track);
  tb.first_lbn = ToVolumeLbn(loc.disk, geo.TrackFirstLbn(track));
  tb.last_lbn = tb.first_lbn + tb.length - 1;
  return tb;
}

void Volume::Reset() {
  for (auto& d : disks_) d->Reset();
}

void Volume::ConfigureQueues(const disk::BatchOptions& options) {
  for (auto& d : disks_) d->ConfigureQueue(options);
}

Result<Volume::Ticket> Volume::Submit(const disk::IoRequest& request,
                                      double arrival_ms, bool warmup) {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(request.lbn));
  if (loc.lbn + request.sectors >
      disks_[loc.disk]->geometry().total_sectors()) {
    return Status::InvalidArgument(
        "request straddles a disk boundary at volume LBN " +
        std::to_string(request.lbn));
  }
  // Re-address to the member disk, carrying the scheduling hint and order
  // group so per-plan policy survives the volume hop.
  disk::IoRequest local = request;
  local.lbn = loc.lbn;
  const uint64_t tag = disks_[loc.disk]->Submit(local, arrival_ms, warmup);
  return Ticket{loc.disk, tag};
}

Result<VolumeBatchResult> Volume::ServiceBatch(
    std::span<const disk::IoRequest> requests,
    const disk::BatchOptions& options) {
  // Route to member disks, preserving issue order per disk. The share
  // buffers are members reused across calls (cleared, capacity kept) so
  // steady-state routing performs no allocations.
  shares_.resize(disks_.size());
  for (auto& s : shares_) s.clear();
  for (const auto& r : requests) {
    MM_ASSIGN_OR_RETURN(Location loc, Resolve(r.lbn));
    if (loc.lbn + r.sectors >
        disks_[loc.disk]->geometry().total_sectors()) {
      return Status::InvalidArgument(
          "request straddles a disk boundary at volume LBN " +
          std::to_string(r.lbn));
    }
    shares_[loc.disk].push_back({loc.lbn, r.sectors});
  }

  VolumeBatchResult out;
  out.per_disk.resize(disks_.size());
  for (size_t d = 0; d < disks_.size(); ++d) {
    if (shares_[d].empty()) continue;
    MM_ASSIGN_OR_RETURN(disk::BatchResult br,
                        disks_[d]->ServiceBatch(shares_[d], options));
    out.per_disk[d] = br;
    out.makespan_ms = std::max(out.makespan_ms, br.TotalMs());
    out.total_busy_ms += br.TotalMs();
    out.requests += br.requests;
    out.sectors += br.sectors;
    out.phases += br.phases;
  }
  return out;
}

}  // namespace mm::lvm
