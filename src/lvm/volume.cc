#include "lvm/volume.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace mm::lvm {

Volume::Volume(const std::vector<disk::DiskSpec>& specs,
               const ReplicationOptions& replication) {
  max_adjacency_ = UINT32_MAX;
  for (const auto& spec : specs) {
    disks_.push_back(std::make_unique<disk::Disk>(spec));
    max_adjacency_ = std::min(max_adjacency_, spec.AdjacentBlocks());
  }
  replicas_ = std::max<uint32_t>(replication.replicas, 1);
  if (replicas_ > disks_.size()) {
    // Copies must land on distinct members; more copies than members is a
    // configuration error we clamp rather than propagate from a ctor.
    replicas_ = static_cast<uint32_t>(disks_.size());
  }
  chunk_sectors_ = std::max<uint64_t>(replication.chunk_sectors, 1);
  if (replicas_ > 1) {
    // Uniform primary-region size P: the largest chunk-aligned region such
    // that R of them fit on the smallest member.
    uint64_t min_sectors = UINT64_MAX;
    for (const auto& d : disks_) {
      min_sectors = std::min(min_sectors, d->geometry().total_sectors());
    }
    primary_sectors_ =
        min_sectors / (replicas_ * chunk_sectors_) * chunk_sectors_;
  }
  uint64_t lbn = 0;
  for (const auto& d : disks_) {
    first_lbn_.push_back(lbn);
    lbn += replicated() ? primary_sectors_ : d->geometry().total_sectors();
  }
  first_lbn_.push_back(lbn);
  total_sectors_ = lbn;
}

int Volume::FirstFailedMember(double at_ms) const {
  for (size_t d = 0; d < disks_.size(); ++d) {
    if (disks_[d]->FailedAt(at_ms)) return static_cast<int>(d);
  }
  return -1;
}

Result<Volume::Location> Volume::Resolve(uint64_t volume_lbn) const {
  if (volume_lbn >= total_sectors_) {
    return Status::OutOfRange("volume LBN " + std::to_string(volume_lbn) +
                              " beyond capacity " +
                              std::to_string(total_sectors_));
  }
  // Disks are few; linear scan over the boundary table.
  uint32_t d = 0;
  while (volume_lbn >= first_lbn_[d + 1]) ++d;
  return Location{d, volume_lbn - first_lbn_[d]};
}

Result<Volume::Location> Volume::ResolveReplica(uint64_t volume_lbn,
                                                uint32_t copy) const {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(volume_lbn));
  if (copy == 0) return loc;
  if (copy >= replicas_) {
    return Status::InvalidArgument(
        "copy " + std::to_string(copy) + " out of range for " +
        std::to_string(replicas_) + " replicas");
  }
  const uint32_t d =
      (loc.disk + copy) % static_cast<uint32_t>(disks_.size());
  return Location{d, copy * primary_sectors_ + loc.lbn};
}

uint64_t Volume::ToVolumeLbn(uint32_t disk_index, uint64_t disk_lbn) const {
  return first_lbn_[disk_index] + disk_lbn;
}

uint64_t Volume::UsableSpan(uint32_t disk_index) const {
  return replicated() ? primary_sectors_
                      : disks_[disk_index]->geometry().total_sectors();
}

Result<uint64_t> Volume::GetAdjacent(uint64_t volume_lbn,
                                     uint32_t step) const {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(volume_lbn));
  MM_ASSIGN_OR_RETURN(
      uint64_t adj, disks_[loc.disk]->geometry().AdjacentLbn(loc.lbn, step));
  if (replicated() && adj >= primary_sectors_) {
    // The physically adjacent block exists but holds another disk's
    // replica; the logical space ends at the primary region.
    return Status::OutOfRange(
        "adjacent block of volume LBN " + std::to_string(volume_lbn) +
        " falls in the replica region");
  }
  return ToVolumeLbn(loc.disk, adj);
}

Result<TrackBoundaries> Volume::GetTrackBoundaries(
    uint64_t volume_lbn) const {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(volume_lbn));
  const disk::Geometry& geo = disks_[loc.disk]->geometry();
  const uint64_t track = geo.TrackOfLbn(loc.lbn);
  TrackBoundaries tb;
  tb.length = geo.TrackLength(track);
  tb.first_lbn = ToVolumeLbn(loc.disk, geo.TrackFirstLbn(track));
  tb.last_lbn = tb.first_lbn + tb.length - 1;
  if (replicated()) {
    // The boundary track may spill into the replica region; the logical
    // track is clipped at the primary-region edge.
    const uint64_t region_last = ToVolumeLbn(loc.disk, primary_sectors_ - 1);
    if (tb.last_lbn > region_last) {
      tb.last_lbn = region_last;
      tb.length = static_cast<uint32_t>(tb.last_lbn - tb.first_lbn + 1);
    }
  }
  return tb;
}

void Volume::Reset() {
  for (auto& d : disks_) d->Reset();
}

void Volume::ConfigureQueues(const disk::BatchOptions& options) {
  for (auto& d : disks_) d->ConfigureQueue(options);
}

void Volume::SetTraceSink(obs::TraceSink* sink) {
  trace_ = sink;
  for (size_t d = 0; d < disks_.size(); ++d) {
    disks_[d]->SetTraceSink(sink, static_cast<uint32_t>(1 + d));
  }
}

Result<Volume::Ticket> Volume::Submit(const disk::IoRequest& request,
                                      double arrival_ms,
                                      const SubmitOptions& options) {
  MM_ASSIGN_OR_RETURN(Location loc, Resolve(request.lbn));
  if (loc.lbn + request.sectors > UsableSpan(loc.disk)) {
    return Status::InvalidArgument(
        "request straddles a disk boundary at volume LBN " +
        std::to_string(request.lbn));
  }
  const uint64_t avoid_disk_mask = options.avoid_mask;
  // Pick the copy to read. A pinned replica routes to that exact copy
  // regardless of mask and fault state (callers pin for verification or
  // scrubbing and want the failure, not a silent redirect). Otherwise the
  // first live copy outside the avoid mask wins, falling back to any live
  // one (a busy replica beats none). Copy k of primary disk d lives on
  // disk (d + k) % D, so the scan visits each copy's member exactly once.
  // An unreplicated volume always routes to its only copy, dead or not --
  // the disk fails the request fast at service time and the layers above
  // handle the completion error.
  Location target = loc;
  uint32_t copy = 0;
  if (options.replica != kAnyReplica) {
    if (options.replica >= replicas_) {
      return Status::InvalidArgument(
          "replica " + std::to_string(options.replica) +
          " out of range for " + std::to_string(replicas_) + " replicas");
    }
    copy = options.replica;
    MM_ASSIGN_OR_RETURN(target, ResolveReplica(request.lbn, copy));
  } else if (replicated()) {
    uint32_t preferred = UINT32_MAX;
    uint32_t fallback = UINT32_MAX;
    for (uint32_t k = 0; k < replicas_; ++k) {
      const uint32_t d =
          (loc.disk + k) % static_cast<uint32_t>(disks_.size());
      if (disks_[d]->FailedAt(arrival_ms)) continue;
      if ((avoid_disk_mask >> d) & 1) {
        if (fallback == UINT32_MAX) fallback = k;
        continue;
      }
      preferred = k;
      break;
    }
    copy = preferred != UINT32_MAX ? preferred : fallback;
    if (copy == UINT32_MAX) {
      return Status::Unavailable("no live replica for volume LBN " +
                                 std::to_string(request.lbn));
    }
    MM_ASSIGN_OR_RETURN(target, ResolveReplica(request.lbn, copy));
  }
  // Re-address to the member disk, carrying the scheduling hint and order
  // group so per-plan policy survives the volume hop.
  disk::IoRequest local = request;
  local.lbn = target.lbn;
  if (trace_ != nullptr && options.trace != obs::kNoTrace && copy > 0) {
    // Submit-time failover: the read starts its life in degraded mode.
    trace_->Instant(arrival_ms, 0, options.trace, "route",
                    "replica_redirect", static_cast<double>(copy));
  }
  const uint64_t tag = disks_[target.disk]->Submit(
      local, arrival_ms, options.warmup, options.trace);
  return Ticket{target.disk, tag, copy};
}

Result<VolumeBatchResult> Volume::ServiceBatch(
    std::span<const disk::IoRequest> requests,
    const disk::BatchOptions& options) {
  // Route to member disks, preserving issue order per disk. The share
  // buffers are members reused across calls (cleared, capacity kept) so
  // steady-state routing performs no allocations.
  shares_.resize(disks_.size());
  for (auto& s : shares_) s.clear();
  for (const auto& r : requests) {
    MM_ASSIGN_OR_RETURN(Location loc, Resolve(r.lbn));
    if (loc.lbn + r.sectors > UsableSpan(loc.disk)) {
      return Status::InvalidArgument(
          "request straddles a disk boundary at volume LBN " +
          std::to_string(r.lbn));
    }
    shares_[loc.disk].push_back({loc.lbn, r.sectors});
  }

  VolumeBatchResult out;
  out.per_disk.resize(disks_.size());
  for (size_t d = 0; d < disks_.size(); ++d) {
    if (shares_[d].empty()) continue;
    MM_ASSIGN_OR_RETURN(disk::BatchResult br,
                        disks_[d]->ServiceBatch(shares_[d], options));
    out.per_disk[d] = br;
    out.makespan_ms = std::max(out.makespan_ms, br.TotalMs());
    out.total_busy_ms += br.TotalMs();
    out.requests += br.requests;
    out.sectors += br.sectors;
    out.phases += br.phases;
  }
  return out;
}

}  // namespace mm::lvm
