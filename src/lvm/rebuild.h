// Online rebuild of a failed member disk of a replicated Volume.
//
// When a member dies, every chunk of its primary region survives as a
// replica on the other members (see volume.h). RebuildPlanner does the
// pure layout work: it enumerates the lost chunks as volume-addressed
// reads over the failed disk's primary region. The driver (query::Session)
// submits each chunk with Volume::Submit under an avoid mask -- the dead
// member is skipped automatically, so the read lands on a surviving copy
// -- and
// paces the drain with RebuildOptions. The write to the spare is modeled
// as free: the simulator is read-only, and the contended resource the
// bench measures is the surviving members' time, which the replica reads
// consume through the ordinary scheduler/aging machinery
// (SchedulingHint::kReorderFreely, so foreground plans keep their
// ordering guarantees while rebuild traffic fills the gaps).
#pragma once

#include <algorithm>
#include <cstdint>

#include "disk/request.h"
#include "lvm/volume.h"

namespace mm::lvm {

/// Pacing knobs for the background rebuild (driven by query::Session).
struct RebuildOptions {
  /// Master switch; off keeps the session's event schedule untouched.
  bool enabled = false;
  /// Delay between the first observed failure symptom and the first
  /// rebuild read, ms (failure-detection latency).
  double detect_delay_ms = 0;
  /// Chunk reads kept in flight at once (>= 1; low keeps rebuild gentle).
  uint32_t outstanding = 1;
  /// Extra idle gap after each chunk completes before the next is issued,
  /// ms (trickle pacing; 0 = rebuild as fast as its outstanding allows).
  double gap_ms = 0;
};

/// Progress accounting for one rebuild, reset per session run.
struct RebuildStats {
  uint64_t chunks_total = 0;
  uint64_t chunks_done = 0;
  uint64_t read_errors = 0;   ///< Chunk reads that failed on every copy.
  uint64_t sectors_read = 0;
  double detected_ms = -1;    ///< First failure symptom observed.
  double started_ms = -1;     ///< First chunk issued.
  double finished_ms = -1;    ///< Last chunk drained.

  bool Detected() const { return detected_ms >= 0; }
  bool Started() const { return started_ms >= 0; }
  bool Finished() const { return finished_ms >= 0; }
};

/// Enumerates the lost chunks of a failed member as volume-addressed
/// reads, in ascending LBN order (the surviving copy of a primary region
/// is contiguous on its mirror, so the drain is a near-sequential sweep).
class RebuildPlanner {
 public:
  RebuildPlanner() = default;

  /// Plans the drain of `failed_disk`'s primary region. The volume must
  /// be replicated and outlive the planner.
  RebuildPlanner(const Volume* volume, uint32_t failed_disk)
      : failed_(failed_disk),
        chunk_(volume->chunk_sectors()),
        begin_(volume->ToVolumeLbn(failed_disk, 0)),
        next_(begin_),
        end_(begin_ + volume->primary_sectors()) {}

  uint32_t failed_disk() const { return failed_; }

  uint64_t chunks_total() const {
    return (end_ - begin_ + chunk_ - 1) / chunk_;
  }

  bool Done() const { return next_ >= end_; }

  /// The next chunk read. Requests are stamped kReorderFreely: rebuild
  /// traffic has no internal ordering requirement and should yield to
  /// foreground hints. Requires !Done().
  disk::IoRequest Next() {
    disk::IoRequest r;
    r.lbn = next_;
    r.sectors = static_cast<uint32_t>(std::min(chunk_, end_ - next_));
    r.hint = disk::SchedulingHint::kReorderFreely;
    next_ += r.sectors;
    return r;
  }

 private:
  uint32_t failed_ = 0;
  uint64_t chunk_ = 1;
  uint64_t begin_ = 0;
  uint64_t next_ = 0;
  uint64_t end_ = 0;
};

}  // namespace mm::lvm
