#include "lvm/cluster.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace mm::lvm {

Result<std::unique_ptr<ClusterVolume>> ClusterVolume::Create(
    const ClusterTopology& topology) {
  if (topology.shards == 0) {
    return Status::InvalidArgument("topology.shards must be positive");
  }
  if (topology.shard_disks.empty()) {
    return Status::InvalidArgument(
        "topology.shard_disks must name at least one member disk");
  }
  if (topology.chunk_sectors == 0) {
    return Status::InvalidArgument("topology.chunk_sectors must be positive");
  }
  auto cluster = std::unique_ptr<ClusterVolume>(new ClusterVolume());
  cluster->topology_ = topology;
  cluster->chunk_ = topology.chunk_sectors;
  for (uint32_t s = 0; s < topology.shards; ++s) {
    cluster->shards_.push_back(
        std::make_unique<Volume>(topology.shard_disks, topology.replication));
  }
  // Slot table from shard 0 (fleets are identical): slot r sits at a
  // chunk-aligned offset of one member's usable span, so routed pieces
  // never straddle a member disk or spill into a replica region.
  const Volume& proto = *cluster->shards_[0];
  for (uint32_t m = 0; m < proto.disk_count(); ++m) {
    const uint64_t usable =
        proto.replicated() ? proto.primary_sectors()
                           : proto.disk(m).geometry().total_sectors();
    for (uint64_t off = 0; off + cluster->chunk_ <= usable;
         off += cluster->chunk_) {
      cluster->slot_base_.push_back(proto.ToVolumeLbn(m, off));
    }
  }
  if (cluster->slot_base_.empty()) {
    return Status::InvalidArgument(
        "chunk_sectors " + std::to_string(cluster->chunk_) +
        " exceeds every member's usable span");
  }
  cluster->rows_ = cluster->slot_base_.size();
  cluster->data_sectors_ = cluster->rows_ * topology.shards * cluster->chunk_;
  // Planning-only geometry: all S x K members concatenated, unreplicated.
  // Its capacity is at least data_sectors_ (each shard's usable space is
  // at least rows_ * chunk_, and replication only shrinks usable space
  // below raw capacity).
  std::vector<disk::DiskSpec> all_disks;
  for (uint32_t s = 0; s < topology.shards; ++s) {
    all_disks.insert(all_disks.end(), topology.shard_disks.begin(),
                     topology.shard_disks.end());
  }
  cluster->logical_ = std::make_unique<Volume>(all_disks);
  return cluster;
}

Result<ShardLocation> ClusterVolume::Resolve(uint64_t global_lbn) const {
  if (global_lbn >= data_sectors_) {
    return Status::OutOfRange(
        "global LBN " + std::to_string(global_lbn) +
        " beyond declustered capacity " + std::to_string(data_sectors_) +
        " (mapping footprint exceeds the cluster's data space)");
  }
  const uint32_t S = topology_.shards;
  const uint64_t c = global_lbn / chunk_;
  const uint64_t r = c / S;
  const uint64_t col = c % S;
  const uint32_t shard = static_cast<uint32_t>((col + r) % S);
  return ShardLocation{shard, slot_base_[r] + global_lbn % chunk_};
}

Result<uint64_t> ClusterVolume::ToGlobalLbn(uint32_t shard,
                                            uint64_t local_lbn) const {
  if (shard >= topology_.shards) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  // Find the slot holding local_lbn: the last slot base at or below it.
  auto it = std::upper_bound(slot_base_.begin(), slot_base_.end(), local_lbn);
  if (it == slot_base_.begin()) {
    return Status::InvalidArgument("shard-local LBN " +
                                   std::to_string(local_lbn) +
                                   " precedes the first chunk slot");
  }
  const uint64_t r = static_cast<uint64_t>(it - slot_base_.begin()) - 1;
  const uint64_t offset = local_lbn - slot_base_[r];
  if (offset >= chunk_) {
    return Status::InvalidArgument(
        "shard-local LBN " + std::to_string(local_lbn) +
        " falls in an unmapped member tail");
  }
  const uint32_t S = topology_.shards;
  const uint64_t col = (shard + S - r % S) % S;
  return (r * S + col) * chunk_ + offset;
}

Status ClusterVolume::Route(const disk::IoRequest& request,
                            std::vector<ShardRequest>* out) const {
  if (request.sectors == 0) {
    return Status::InvalidArgument("zero-sector cluster request");
  }
  uint64_t lbn = request.lbn;
  uint64_t left = request.sectors;
  while (left > 0) {
    const uint64_t in_chunk = chunk_ - lbn % chunk_;
    const uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(in_chunk, left));
    MM_ASSIGN_OR_RETURN(ShardLocation loc, Resolve(lbn));
    // Contiguous same-shard pieces coalesce (the S = 1 cluster routes a
    // multi-chunk run as the single request the plain volume would see).
    if (!out->empty()) {
      ShardRequest& prev = out->back();
      if (prev.shard == loc.shard &&
          prev.req.lbn + prev.req.sectors == loc.lbn) {
        prev.req.sectors += n;
        lbn += n;
        left -= n;
        continue;
      }
    }
    disk::IoRequest piece = request;
    piece.lbn = loc.lbn;
    piece.sectors = n;
    out->push_back(ShardRequest{loc.shard, piece});
    lbn += n;
    left -= n;
  }
  return Status::OK();
}

Status ClusterVolume::Route(const disk::IoRequest& request,
                            std::vector<ShardRequest>* out,
                            obs::TraceSink* sink, double now_ms,
                            uint64_t query) const {
  const size_t before = out->size();
  Status st = Route(request, out);
  if (!st.ok()) return st;
  if (sink != nullptr && query != obs::kNoTrace) {
    sink->Instant(now_ms, 0, query, "route", "fanout",
                  static_cast<double>(out->size() - before));
  }
  return Status::OK();
}

void ClusterVolume::Reset() {
  for (auto& s : shards_) s->Reset();
}

void ClusterVolume::ConfigureQueues(const disk::BatchOptions& options) {
  for (auto& s : shards_) s->ConfigureQueues(options);
}

}  // namespace mm::lvm
