// Logical volume manager (LVM).
//
// The paper's prototype "consists of a logical volume manager (LVM) and a
// database storage manager. The LVM exports a single logical volume mapped
// across multiple disks and identifies adjacent blocks" (Section 5.1). The
// adjacency model is exposed through two interface functions (Section 3.2),
// which we name GetAdjacent and GetTrackBoundaries.
//
// Volume address space: member disks are concatenated (disk 0's blocks,
// then disk 1's, ...). Data is declustered across disks at allocation time
// -- the paper distributes whole basic cubes / chunks to different disks and
// reports per-disk performance -- so the LVM keeps addressing simple and
// never lets a track or adjacency relation span two disks.
//
// Replication mode (ReplicationOptions with replicas R > 1): each member
// disk is split into R equal regions of P sectors (P = the largest
// chunk-aligned region such that R of them fit on the smallest member).
// Region 0 of disk d holds d's primary data; region k (k >= 1) of disk d
// mirrors the whole primary region of disk (d - k + D) % D -- so copy k of
// primary disk d lives on disk (d + k) % D at local offset k * P. The
// logical address space shrinks to D * P and remains the concatenation of
// the primary regions: every LBN, track, and adjacency relation of the
// non-replicated layout survives unchanged within a primary region, and a
// degraded read redirects an intra-disk run contiguously (semi-sequential
// plans stay semi-sequential on the mirror). Reads route to the primary;
// Submit with a SubmitOptions avoid mask re-routes to the next live copy
// on failover (degraded mode).
// chunk_sectors is the rebuild granularity (lvm/rebuild.h), not a
// striping unit. With R = 1 the layout and every code path are identical
// to the non-replicated volume.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "disk/disk.h"
#include "disk/request.h"
#include "disk/scheduler.h"
#include "disk/spec.h"
#include "obs/ids.h"
#include "util/result.h"

namespace mm::obs {
class TraceSink;
}  // namespace mm::obs

namespace mm::lvm {

/// Track extent of the track containing an LBN, as exported to applications
/// (the paper's get_track_boundaries): applications learn track length T
/// without learning cylinder/surface details.
struct TrackBoundaries {
  uint64_t first_lbn = 0;  ///< First volume LBN of the track.
  uint64_t last_lbn = 0;   ///< Last volume LBN of the track (inclusive).
  uint32_t length = 0;     ///< Track length T in blocks.
};

/// Result of servicing a volume batch: per-disk breakdown plus makespan.
struct VolumeBatchResult {
  std::vector<disk::BatchResult> per_disk;
  /// Wall-clock of the batch assuming disks service their shares in
  /// parallel (paper Section 4.4: multiple disks scale throughput; latency
  /// per disk is unchanged).
  double makespan_ms = 0;
  /// Sum of busy time across disks.
  double total_busy_ms = 0;
  uint64_t requests = 0;
  uint64_t sectors = 0;
  /// Per-phase totals summed over member disks.
  disk::ServicePhases phases;
};

/// Replication configuration for a Volume (see the class comment): R
/// copies of every block on R distinct member disks.
struct ReplicationOptions {
  /// Copies of each block, including the primary. 1 = no replication
  /// (bit-identical to the plain volume); clamped to the member count.
  uint32_t replicas = 1;
  /// Rebuild granularity in sectors: the primary-region size is rounded
  /// down to a multiple of this, and RebuildPlanner drains a failed
  /// member in chunk-sized reads. Must be positive.
  uint64_t chunk_sectors = 1024;
};

/// SubmitOptions::replica value selecting automatic replica routing (the
/// first live copy outside the avoid mask).
inline constexpr uint32_t kAnyReplica = UINT32_MAX;

/// Per-request routing options, shared by the simulated volume
/// (Volume::Submit) and the data plane (store::StoreVolume::Read). The
/// default value is a strict no-op: primary routing, no mask, a normal
/// (non-warmup) request.
struct SubmitOptions {
  /// Member disks to route around (bit d = member disk d). Replicated
  /// volumes prefer the first live copy outside the mask and relax the
  /// mask when every live copy is masked (a busy replica beats none);
  /// unreplicated volumes ignore it -- there is only one place the block
  /// can live.
  uint64_t avoid_mask = 0;
  /// Pin the request to one exact copy (0 = primary, k = k-th mirror)
  /// instead of automatic failover routing. kAnyReplica (the default)
  /// selects automatic routing; an explicit copy must be < replicas().
  uint32_t replica = kAnyReplica;
  /// Head-placement read, excluded from latency accounting (simulated
  /// volume only; the data plane ignores it).
  bool warmup = false;
  /// Trace attribution for the request: the query id whose timeline the
  /// member disk's service spans belong to, obs::kBackground for traced
  /// query-less work (rebuild, migration), or obs::kNoTrace (the default)
  /// for silence. Appended last so existing designated initializers keep
  /// compiling.
  uint64_t trace = obs::kNoTrace;
};

/// A logical volume over one or more simulated disks.
class Volume {
 public:
  /// Creates a volume whose member disks use the given specs, optionally
  /// replicated (see the class comment).
  explicit Volume(const std::vector<disk::DiskSpec>& specs,
                  const ReplicationOptions& replication = {});

  /// Convenience: single-disk volume.
  explicit Volume(const disk::DiskSpec& spec)
      : Volume(std::vector<disk::DiskSpec>{spec}) {}

  size_t disk_count() const { return disks_.size(); }
  disk::Disk& disk(size_t i) { return *disks_[i]; }
  const disk::Disk& disk(size_t i) const { return *disks_[i]; }

  /// Total volume capacity in blocks (the logical space: D * P when
  /// replicated).
  uint64_t total_sectors() const { return total_sectors_; }

  // --- Replication ------------------------------------------------------

  /// True when the volume keeps more than one copy of each block.
  bool replicated() const { return replicas_ > 1; }
  /// Copies of each block, including the primary (1 when unreplicated).
  uint32_t replicas() const { return replicas_; }
  /// Rebuild granularity in sectors (meaningful when replicated).
  uint64_t chunk_sectors() const { return chunk_sectors_; }
  /// Per-disk primary-region size P in sectors (0 when unreplicated).
  uint64_t primary_sectors() const { return primary_sectors_; }
  /// Index of the first member disk whose FaultModel reports whole-disk
  /// failure at `at_ms` (see disk::Disk::FailedAt), or -1 when all live.
  int FirstFailedMember(double at_ms) const;

  /// Volume LBN -> member disk and disk-local LBN.
  struct Location {
    uint32_t disk = 0;
    uint64_t lbn = 0;
  };
  Result<Location> Resolve(uint64_t volume_lbn) const;

  /// Location of copy `copy` of a volume LBN: copy 0 is the primary
  /// (= Resolve); copy k lives on disk (primary + k) % D at local offset
  /// k * P. copy must be < replicas().
  Result<Location> ResolveReplica(uint64_t volume_lbn, uint32_t copy) const;

  /// Member disk + local LBN -> volume LBN.
  uint64_t ToVolumeLbn(uint32_t disk_index, uint64_t disk_lbn) const;

  // --- Adjacency-model interface (paper Section 3.2) -------------------

  /// Returns the `step`-th adjacent block of `volume_lbn`: the block
  /// `step` tracks away that can be accessed in one settle time with no
  /// rotational latency. step must be in [1, MaxAdjacency()].
  Result<uint64_t> GetAdjacent(uint64_t volume_lbn, uint32_t step) const;

  /// Returns the boundaries and length T of the track holding `volume_lbn`.
  Result<TrackBoundaries> GetTrackBoundaries(uint64_t volume_lbn) const;

  /// The number of adjacent blocks D exposed by the volume: the minimum
  /// over member disks (a conservative, disk-generic value, as the paper's
  /// LVM exposes).
  uint32_t MaxAdjacency() const { return max_adjacency_; }

  // --- Execution --------------------------------------------------------

  /// Resets all member disks (time 0, heads parked, stats and queues
  /// cleared).
  void Reset();

  /// Ticket for a submitted request: the member disk it queued on and the
  /// disk-local tag (dense from 0 after Reset()).
  struct Ticket {
    uint32_t disk = 0;
    uint64_t tag = 0;
    /// Replica the request was routed to (0 = primary; > 0 means the
    /// submit-time failover already put the read in degraded mode).
    uint32_t copy = 0;
  };

  /// Sets the queue policy on every member disk (see Disk::ConfigureQueue).
  void ConfigureQueues(const disk::BatchOptions& options);

  /// Attaches a trace sink to the volume and its member disks (nullptr
  /// detaches). Member disk d records on thread track 1 + d; the volume
  /// itself emits routing instants ("replica_redirect") on track 0.
  /// Reset() keeps the sink: the owning session attaches/detaches.
  void SetTraceSink(obs::TraceSink* sink);

  /// Queues a volume-addressed request arriving at `arrival_ms` on its
  /// member disk (see Disk::Submit). Member disks drain their queues
  /// independently, so requests on different disks genuinely overlap in
  /// simulated time; query::Session drives the drains on a shared
  /// sim::EventLoop. The request's SchedulingHint and order_group are
  /// carried through to the member disk's queue, so per-plan ordering
  /// survives the volume hop (within-group FIFO is per member disk, which
  /// is exactly the adjacency model's granularity: adjacency relations
  /// never span disks). The request must not straddle a disk boundary.
  ///
  /// Routing follows `options`: with the default SubmitOptions the request
  /// goes to the primary copy; with replica == kAnyReplica and a non-zero
  /// avoid_mask it goes to the first live copy (skipping members failed at
  /// `arrival_ms`) whose member disk is not in the mask. When every live
  /// copy is masked the mask is relaxed (a busy replica beats none); when
  /// no live copy remains at all, returns StatusCode::kUnavailable. An
  /// explicit replica pins the request to that exact copy regardless of
  /// mask and fault state (it must be < replicas()). On an unreplicated
  /// volume the mask is ignored -- there is only one place the block can
  /// live -- and a dead disk still accepts the request (it fails fast at
  /// service time).
  Result<Ticket> Submit(const disk::IoRequest& request, double arrival_ms,
                        const SubmitOptions& options = {});

  /// Deprecated: use Submit(request, arrival_ms, SubmitOptions{.avoid_mask
  /// = mask, .warmup = warmup}).
  [[deprecated("use Submit(request, arrival_ms, SubmitOptions)")]]
  Result<Ticket> SubmitAvoiding(const disk::IoRequest& request,
                                double arrival_ms, uint64_t avoid_disk_mask,
                                bool warmup = false) {
    return Submit(request, arrival_ms,
                  SubmitOptions{.avoid_mask = avoid_disk_mask,
                                .warmup = warmup});
  }

  /// Services a batch of volume-addressed requests (closed loop). Requests
  /// are routed to member disks preserving order, each disk schedules its
  /// share with `options`, and disks run in parallel: makespan_ms is the
  /// max over per-disk busy times.
  ///
  /// Requests must not straddle a disk boundary.
  Result<VolumeBatchResult> ServiceBatch(
      std::span<const disk::IoRequest> requests,
      const disk::BatchOptions& options = {});

 private:
  // Disk-local span a request starting at a primary-region offset may
  // cover without straddling: P when replicated, the disk size otherwise.
  uint64_t UsableSpan(uint32_t disk_index) const;

  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<uint64_t> first_lbn_;  // per disk, plus total at the end
  uint64_t total_sectors_ = 0;
  uint32_t max_adjacency_ = 0;
  uint32_t replicas_ = 1;
  uint64_t chunk_sectors_ = 0;
  uint64_t primary_sectors_ = 0;  // P; 0 when unreplicated
  obs::TraceSink* trace_ = nullptr;
  // Per-disk request shares, reused across ServiceBatch calls so routing
  // is allocation-free on the steady state (capacities persist).
  std::vector<std::vector<disk::IoRequest>> shares_;
};

}  // namespace mm::lvm
