// Logical volume manager (LVM).
//
// The paper's prototype "consists of a logical volume manager (LVM) and a
// database storage manager. The LVM exports a single logical volume mapped
// across multiple disks and identifies adjacent blocks" (Section 5.1). The
// adjacency model is exposed through two interface functions (Section 3.2),
// which we name GetAdjacent and GetTrackBoundaries.
//
// Volume address space: member disks are concatenated (disk 0's blocks,
// then disk 1's, ...). Data is declustered across disks at allocation time
// -- the paper distributes whole basic cubes / chunks to different disks and
// reports per-disk performance -- so the LVM keeps addressing simple and
// never lets a track or adjacency relation span two disks.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "disk/disk.h"
#include "disk/request.h"
#include "disk/scheduler.h"
#include "disk/spec.h"
#include "util/result.h"

namespace mm::lvm {

/// Track extent of the track containing an LBN, as exported to applications
/// (the paper's get_track_boundaries): applications learn track length T
/// without learning cylinder/surface details.
struct TrackBoundaries {
  uint64_t first_lbn = 0;  ///< First volume LBN of the track.
  uint64_t last_lbn = 0;   ///< Last volume LBN of the track (inclusive).
  uint32_t length = 0;     ///< Track length T in blocks.
};

/// Result of servicing a volume batch: per-disk breakdown plus makespan.
struct VolumeBatchResult {
  std::vector<disk::BatchResult> per_disk;
  /// Wall-clock of the batch assuming disks service their shares in
  /// parallel (paper Section 4.4: multiple disks scale throughput; latency
  /// per disk is unchanged).
  double makespan_ms = 0;
  /// Sum of busy time across disks.
  double total_busy_ms = 0;
  uint64_t requests = 0;
  uint64_t sectors = 0;
  /// Per-phase totals summed over member disks.
  disk::ServicePhases phases;
};

/// A logical volume over one or more simulated disks.
class Volume {
 public:
  /// Creates a volume whose member disks use the given specs.
  explicit Volume(const std::vector<disk::DiskSpec>& specs);

  /// Convenience: single-disk volume.
  explicit Volume(const disk::DiskSpec& spec)
      : Volume(std::vector<disk::DiskSpec>{spec}) {}

  size_t disk_count() const { return disks_.size(); }
  disk::Disk& disk(size_t i) { return *disks_[i]; }
  const disk::Disk& disk(size_t i) const { return *disks_[i]; }

  /// Total volume capacity in blocks.
  uint64_t total_sectors() const { return total_sectors_; }

  /// Volume LBN -> member disk and disk-local LBN.
  struct Location {
    uint32_t disk = 0;
    uint64_t lbn = 0;
  };
  Result<Location> Resolve(uint64_t volume_lbn) const;

  /// Member disk + local LBN -> volume LBN.
  uint64_t ToVolumeLbn(uint32_t disk_index, uint64_t disk_lbn) const;

  // --- Adjacency-model interface (paper Section 3.2) -------------------

  /// Returns the `step`-th adjacent block of `volume_lbn`: the block
  /// `step` tracks away that can be accessed in one settle time with no
  /// rotational latency. step must be in [1, MaxAdjacency()].
  Result<uint64_t> GetAdjacent(uint64_t volume_lbn, uint32_t step) const;

  /// Returns the boundaries and length T of the track holding `volume_lbn`.
  Result<TrackBoundaries> GetTrackBoundaries(uint64_t volume_lbn) const;

  /// The number of adjacent blocks D exposed by the volume: the minimum
  /// over member disks (a conservative, disk-generic value, as the paper's
  /// LVM exposes).
  uint32_t MaxAdjacency() const { return max_adjacency_; }

  // --- Execution --------------------------------------------------------

  /// Resets all member disks (time 0, heads parked, stats and queues
  /// cleared).
  void Reset();

  /// Ticket for a submitted request: the member disk it queued on and the
  /// disk-local tag (dense from 0 after Reset()).
  struct Ticket {
    uint32_t disk = 0;
    uint64_t tag = 0;
  };

  /// Sets the queue policy on every member disk (see Disk::ConfigureQueue).
  void ConfigureQueues(const disk::BatchOptions& options);

  /// Queues a volume-addressed request arriving at `arrival_ms` on its
  /// member disk (see Disk::Submit). Member disks drain their queues
  /// independently, so requests on different disks genuinely overlap in
  /// simulated time; query::Session drives the drains on a shared
  /// sim::EventLoop. The request's SchedulingHint and order_group are
  /// carried through to the member disk's queue, so per-plan ordering
  /// survives the volume hop (within-group FIFO is per member disk, which
  /// is exactly the adjacency model's granularity: adjacency relations
  /// never span disks). The request must not straddle a disk boundary.
  Result<Ticket> Submit(const disk::IoRequest& request, double arrival_ms,
                        bool warmup = false);

  /// Services a batch of volume-addressed requests (closed loop). Requests
  /// are routed to member disks preserving order, each disk schedules its
  /// share with `options`, and disks run in parallel: makespan_ms is the
  /// max over per-disk busy times.
  ///
  /// Requests must not straddle a disk boundary.
  Result<VolumeBatchResult> ServiceBatch(
      std::span<const disk::IoRequest> requests,
      const disk::BatchOptions& options = {});

 private:
  std::vector<std::unique_ptr<disk::Disk>> disks_;
  std::vector<uint64_t> first_lbn_;  // per disk, plus total at the end
  uint64_t total_sectors_ = 0;
  uint32_t max_adjacency_ = 0;
  // Per-disk request shares, reused across ServiceBatch calls so routing
  // is allocation-free on the steady state (capacities persist).
  std::vector<std::vector<disk::IoRequest>> shares_;
};

}  // namespace mm::lvm
