// Earthquake dataset walkthrough (paper Sections 4.5 / 5.4): build the
// skewed octree, detect and grow uniform subareas, lay them out with
// MultiMap, and compare beam queries against the linear layouts.
//
//   $ ./build/examples/earthquake_scan
#include <cstdio>

#include "dataset/earthquake.h"
#include "disk/spec.h"
#include "lvm/volume.h"
#include "util/rng.h"

using namespace mm;

int main() {
  const dataset::QuakeParams params{7};  // 128^3 domain
  const dataset::Octree tree = dataset::BuildQuakeOctree(params);
  std::printf("octree: depth %u, %llu leaves over a %u^3 domain\n",
              params.max_depth, (unsigned long long)tree.leaf_count(),
              tree.extent());

  // Section 4.5: uniform subtrees, then neighbor growing.
  auto subtrees = tree.UniformSubtrees();
  auto regions = dataset::Octree::GrowRegions(subtrees);
  std::printf("%zu uniform subtrees -> %zu grown regions\n", subtrees.size(),
              regions.size());
  std::sort(regions.begin(), regions.end(),
            [&](const auto& a, const auto& b) {
              return a.LeafCells(params.max_depth) >
                     b.LeafCells(params.max_depth);
            });
  for (size_t i = 0; i < regions.size() && i < 4; ++i) {
    const auto& r = regions[i];
    std::printf(
        "  region %zu: %ux%ux%u cells at (%u,%u,%u), leaf level %u, "
        "%llu leaves (%.0f%% of dataset)\n",
        i, r.wx, r.wy, r.wz, r.x0, r.y0, r.z0, r.leaf_level,
        (unsigned long long)r.LeafCells(params.max_depth),
        100.0 * static_cast<double>(r.LeafCells(params.max_depth)) /
            static_cast<double>(tree.leaf_count()));
  }

  lvm::Volume vol(disk::MakeAtlas10k3());
  Rng rng(2026);
  std::printf("\nZ-beam (through the earth layers), avg ms per element:\n");
  for (auto layout :
       {dataset::QuakeStore::Layout::kNaive,
        dataset::QuakeStore::Layout::kHilbert,
        dataset::QuakeStore::Layout::kMultiMap}) {
    auto store = dataset::QuakeStore::Create(vol, tree, layout);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    double total = 0;
    uint64_t leaves = 0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      map::Box beam;
      beam.lo = map::MakeCell(
          {static_cast<uint32_t>(rng.Uniform(tree.extent())),
           static_cast<uint32_t>(rng.Uniform(tree.extent())), 0});
      beam.hi = map::MakeCell({beam.lo[0] + 1, beam.lo[1] + 1,
                               tree.extent()});
      const auto plan = (*store)->PlanBox(beam);
      auto br = vol.ServiceBatch(
          plan.requests,
          {plan.mapping_order ? disk::SchedulerKind::kFifo
                              : disk::SchedulerKind::kElevator,
           4, true});
      if (!br.ok()) return 1;
      total += br->makespan_ms;
      leaves += plan.leaves;
    }
    std::printf("  %-8s: %6.3f ms/element (%llu elements)\n",
                (*store)->name().c_str(), total / leaves,
                (unsigned long long)leaves);
  }
  return 0;
}
