// Explore the adjacency model (paper Section 3): inspect track geometry,
// list adjacent blocks, and time semi-sequential vs. nearby vs. random
// accesses on the simulated disk -- reproducing the "factor of four"
// observation of Section 3.2.
//
//   $ ./build/examples/adjacency_explorer
#include <cstdio>

#include "disk/disk.h"
#include "disk/spec.h"
#include "lvm/volume.h"
#include "util/rng.h"

using namespace mm;

int main() {
  lvm::Volume volume(disk::MakeCheetah36Es());
  const uint64_t start = 1000000;

  auto tb = volume.GetTrackBoundaries(start);
  if (!tb.ok()) return 1;
  std::printf("LBN %llu: track [%llu, %llu], T = %u blocks\n",
              (unsigned long long)start, (unsigned long long)tb->first_lbn,
              (unsigned long long)tb->last_lbn, tb->length);
  std::printf("D = %u adjacent blocks\n\n", volume.MaxAdjacency());

  std::printf("first few adjacent blocks of %llu:\n",
              (unsigned long long)start);
  for (uint32_t j : {1u, 2u, 3u, 64u, 128u}) {
    auto adj = volume.GetAdjacent(start, j);
    if (adj.ok()) {
      std::printf("  %3u-th: LBN %llu (track +%u)\n", j,
                  (unsigned long long)*adj, j);
    }
  }

  // Timing: semi-sequential path vs. nearby access vs. random access.
  disk::Disk& d = volume.disk(0);
  Rng rng(99);

  // (a) semi-sequential: chain of first adjacent blocks.
  d.Reset();
  (void)d.Service({start, 1});
  double semi = 0;
  uint64_t lbn = start;
  const int hops = 64;
  for (int i = 0; i < hops; ++i) {
    lbn = *volume.GetAdjacent(lbn, 1);
    const double t0 = d.now_ms();
    (void)d.Service({lbn, 1});
    semi += d.now_ms() - t0;
  }

  // (b) nearby access: random blocks within D tracks (short seek + full
  // rotational latency on average).
  d.Reset();
  (void)d.Service({start, 1});
  double nearby = 0;
  for (int i = 0; i < hops; ++i) {
    const uint64_t t = rng.Uniform(volume.MaxAdjacency());
    const uint64_t off = rng.Uniform(tb->length);
    const uint64_t near_lbn = tb->first_lbn + t * tb->length + off;
    const double t0 = d.now_ms();
    (void)d.Service({near_lbn, 1});
    nearby += d.now_ms() - t0;
  }

  // (c) random access across the whole disk.
  d.Reset();
  double random = 0;
  for (int i = 0; i < hops; ++i) {
    const double t0 = d.now_ms();
    (void)d.Service({rng.Uniform(d.geometry().total_sectors()), 1});
    random += d.now_ms() - t0;
  }

  std::printf("\naverage per access over %d accesses:\n", hops);
  std::printf("  semi-sequential : %6.3f ms\n", semi / hops);
  std::printf("  nearby (<=D trk): %6.3f ms  (%.1fx semi-sequential)\n",
              nearby / hops, nearby / semi);
  std::printf("  random          : %6.3f ms  (%.1fx semi-sequential)\n",
              random / hops, random / semi);
  std::printf(
      "\nSection 3.2: \"Semi-sequential access outperforms nearby access\n"
      "within D tracks by a factor of four.\"\n");
  return 0;
}
