// OLAP walkthrough (paper Section 5.5): derive the 4-D cube from a
// synthetic TPC-H-style order stream, place one chunk with MultiMap, and
// answer the paper's five analytical queries.
//
//   $ ./build/examples/olap_analytics
#include <cstdio>

#include "core/multimap.h"
#include "dataset/olap.h"
#include "disk/spec.h"
#include "lvm/volume.h"
#include "mapping/naive.h"
#include "query/executor.h"

using namespace mm;

int main() {
  // Derive the cube from rows, the way the paper derives it from TPC-H:
  // group by (OrderDate, Quantity, NationID, Product), roll OrderDate up
  // into 2-day buckets.
  Rng rng(1);
  const auto rows = dataset::GenerateOrders(200000, rng);
  const auto counts = dataset::RollUp(rows, dataset::OlapFullShape());
  uint64_t occupied = 0;
  for (uint32_t c : counts) occupied += c > 0 ? 1 : 0;
  std::printf("rolled %zu orders into cube %s: %llu occupied cells\n",
              rows.size(), dataset::OlapFullShape().ToString().c_str(),
              (unsigned long long)occupied);

  // One per-disk chunk, as the paper stores and measures it.
  const map::GridShape chunk = dataset::OlapChunkShape();
  lvm::Volume vol(disk::MakeCheetah36Es());
  auto mmap = core::MultiMapMapping::Create(vol, chunk);
  if (!mmap.ok()) {
    std::fprintf(stderr, "%s\n", mmap.status().ToString().c_str());
    return 1;
  }
  map::NaiveMapping naive(chunk, 0);
  std::printf("chunk %s, basic cube K = (%u, %u, %u, %u)\n\n",
              chunk.ToString().c_str(), (*mmap)->cube().k[0],
              (*mmap)->cube().k[1], (*mmap)->cube().k[2],
              (*mmap)->cube().k[3]);

  const char* text[5] = {
      "Q1: profit of product P, quantity Q, country C over all dates",
      "Q2: profit of product P, quantity Q, one date, all countries",
      "Q3: profit of product P to country C over one year",
      "Q4: profit of product P over all countries/quantities, one year",
      "Q5: 10 products x 10 quantities x 10 countries x 20 days",
  };
  for (int q = 1; q <= 5; ++q) {
    std::printf("%s\n", text[q - 1]);
    for (const map::Mapping* m :
         {static_cast<const map::Mapping*>(&naive),
          static_cast<const map::Mapping*>(mmap->get())}) {
      vol.Reset();
      query::Executor ex(&vol, m);
      Rng qrng(100 + static_cast<uint64_t>(q));
      auto r = [&]() {
        switch (q) {
          case 1:
            return ex.RunBeam(dataset::OlapQ1(chunk, qrng));
          case 2:
            return ex.RunBeam(dataset::OlapQ2(chunk, qrng));
          case 3:
            return ex.RunRange(dataset::OlapQ3(chunk, qrng));
          case 4:
            return ex.RunRange(dataset::OlapQ4(chunk, qrng));
          default:
            return ex.RunRange(dataset::OlapQ5(chunk, qrng));
        }
      }();
      if (!r.ok()) return 1;
      std::printf("  %-8s: %8.1f ms total, %6.3f ms/cell\n",
                  m->name().c_str(), r->io_ms, r->PerCellMs());
    }
  }
  return 0;
}
