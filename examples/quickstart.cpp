// Quickstart: map a small 3-D dataset with MultiMap, run a beam and a
// range query, and compare against the Naive layout.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/multimap.h"
#include "disk/spec.h"
#include "lvm/volume.h"
#include "mapping/naive.h"
#include "query/executor.h"

using namespace mm;

int main() {
  // A logical volume over one simulated 10 krpm disk (the paper's
  // Atlas 10k III-like preset). The volume exports the adjacency model:
  // GetAdjacent() and GetTrackBoundaries().
  lvm::Volume volume(disk::MakeAtlas10k3());
  std::printf("volume: %llu blocks, D = %u adjacent blocks\n",
              (unsigned long long)volume.total_sectors(),
              volume.MaxAdjacency());

  // A 3-D dataset of 200^3 cells, one disk block per cell. (Beam strides
  // scale with the dataset: very small grids make even Naive's non-primary
  // dimensions cheap, so use a realistic extent.)
  const map::GridShape shape{200, 200, 200};

  // MultiMap picks basic-cube dimensions satisfying the paper's Eq. 1-3.
  auto mmap = core::MultiMapMapping::Create(volume, shape);
  if (!mmap.ok()) {
    std::fprintf(stderr, "%s\n", mmap.status().ToString().c_str());
    return 1;
  }
  std::printf("basic cube: K = (%u, %u, %u), %llu cubes, %.1f%% waste\n",
              (*mmap)->cube().k[0], (*mmap)->cube().k[1],
              (*mmap)->cube().k[2],
              (unsigned long long)(*mmap)->cube_count(),
              100.0 * (*mmap)->WastedFraction());

  map::NaiveMapping naive(shape, /*base_lbn=*/0);

  // Beam query along Dim1 (the paper's classic example: sequential for
  // nobody, semi-sequential for MultiMap).
  query::BeamQuery beam;
  beam.dim = 1;
  beam.fixed = map::MakeCell({17, 0, 42});

  for (const map::Mapping* m :
       {static_cast<const map::Mapping*>(&naive),
        static_cast<const map::Mapping*>(mmap->get())}) {
    volume.Reset();
    query::Executor ex(&volume, m);
    auto r = ex.RunBeam(beam);
    if (!r.ok()) return 1;
    std::printf("%-8s Dim1 beam:  %6.3f ms/cell  (%llu cells)\n",
                m->name().c_str(), r->PerCellMs(),
                (unsigned long long)r->cells);
  }

  // Range query: a 12^3 box (about 0.02% selectivity).
  map::Box box;
  box.lo = map::MakeCell({80, 80, 80});
  box.hi = map::MakeCell({92, 92, 92});
  for (const map::Mapping* m :
       {static_cast<const map::Mapping*>(&naive),
        static_cast<const map::Mapping*>(mmap->get())}) {
    volume.Reset();
    query::Executor ex(&volume, m);
    auto r = ex.RunRange(box);
    if (!r.ok()) return 1;
    std::printf("%-8s 16^3 range: %6.1f ms total\n", m->name().c_str(),
                r->io_ms);
  }
  return 0;
}
