// Open-loop execution demo: the async submission API on a two-disk
// volume. Queries arrive as a Poisson stream, their requests queue at the
// member disks, and both disks service their shares concurrently in
// simulated time. Prints the latency breakdown at a light and a heavy
// arrival rate -- the queueing delay the closed-loop figures never show.
//
// Build: part of the default cmake build; run from anywhere.
#include <cstdio>
#include <vector>

#include "disk/spec.h"
#include "lvm/volume.h"
#include "mapping/naive.h"
#include "query/executor.h"
#include "query/query.h"
#include "query/session.h"
#include "util/rng.h"

int main() {
  using namespace mm;

  // Two small test disks; 8x8x8 cells row-major across the volume. Rows
  // of 8 cells align with the disk boundary, so no request straddles it.
  lvm::Volume vol(std::vector<disk::DiskSpec>{disk::MakeTestDisk(),
                                              disk::MakeTestDisk()});
  map::GridShape shape{8, 8, 8};
  map::NaiveMapping naive(shape, 0);
  query::Executor ex(&vol, &naive);

  // Workload: random Dim0 beams (one 8-sector read each, half per disk).
  std::vector<map::Box> boxes;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    boxes.push_back(query::RandomBeam(shape, 0, rng).ToBox(shape));
  }

  std::printf("open-loop Poisson arrivals, %zu beam queries, 2 disks\n\n",
              boxes.size());
  std::printf("%8s %10s %10s %10s %10s %10s\n", "rate", "p50", "p95", "p99",
              "queue", "service");
  for (double qps : {20.0, 60.0, 110.0}) {
    query::Session session(&vol, &ex, query::SessionOptions{});
    auto stats = session.Run(boxes, query::ArrivalProcess::OpenPoisson(qps));
    if (!stats.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%6.0f/s %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n", qps,
                stats->P50Ms(), stats->P95Ms(), stats->P99Ms(),
                stats->queueing.Mean(), stats->service.Mean());
  }

  std::printf(
      "\nSame service time at every rate; the latency you feel is the\n"
      "queue. Closed-loop equivalents of these queries would report only\n"
      "the service column.\n");
  return 0;
}
