// Open-loop execution demo: the async submission API on a two-disk
// volume. Queries arrive as a Poisson stream, their requests queue at the
// member disks, and both disks service their shares concurrently in
// simulated time. Prints the latency breakdown at a light and a heavy
// arrival rate -- the queueing delay the closed-loop figures never show.
//
// With `--trace <path>`, the heaviest rate is rerun with an
// obs::TraceSink attached: the Chrome trace-event JSON lands at <path>
// (open it in Perfetto or chrome://tracing) and the per-query explain
// timeline of query 0 prints below the table.
//
// Build: part of the default cmake build; run from anywhere.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "disk/spec.h"
#include "lvm/volume.h"
#include "mapping/naive.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "query/executor.h"
#include "query/query.h"
#include "query/session.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace mm;

  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace <path>]\n", argv[0]);
      return 2;
    }
  }

  // Two small test disks; 8x8x8 cells row-major across the volume. Rows
  // of 8 cells align with the disk boundary, so no request straddles it.
  lvm::Volume vol(std::vector<disk::DiskSpec>{disk::MakeTestDisk(),
                                              disk::MakeTestDisk()});
  map::GridShape shape{8, 8, 8};
  map::NaiveMapping naive(shape, 0);
  query::Executor ex(&vol, &naive);

  // Workload: random Dim0 beams (one 8-sector read each, half per disk).
  std::vector<map::Box> boxes;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    boxes.push_back(query::RandomBeam(shape, 0, rng).ToBox(shape));
  }

  std::printf("open-loop Poisson arrivals, %zu beam queries, 2 disks\n\n",
              boxes.size());
  std::printf("%8s %10s %10s %10s %10s %10s\n", "rate", "p50", "p95", "p99",
              "queue", "service");
  for (double qps : {20.0, 60.0, 110.0}) {
    query::Session session(&vol, &ex, query::SessionOptions{});
    auto stats = session.Run(boxes, query::ArrivalProcess::OpenPoisson(qps));
    if (!stats.ok()) {
      std::fprintf(stderr, "session failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%6.0f/s %8.2fms %8.2fms %8.2fms %8.2fms %8.2fms\n", qps,
                stats->P50Ms(), stats->P95Ms(), stats->P99Ms(),
                stats->queueing.Mean(), stats->service.Mean());
  }

  std::printf(
      "\nSame service time at every rate; the latency you feel is the\n"
      "queue. Closed-loop equivalents of these queries would report only\n"
      "the service column.\n");

  if (!trace_path.empty()) {
    obs::TraceSink sink;
    query::ClusterConfig config;
    config.arrivals = query::ArrivalProcess::OpenPoisson(110.0);
    config.trace = &sink;
    query::Session session(&vol, &ex, config);
    auto stats = session.Run(boxes);
    if (!stats.ok()) {
      std::fprintf(stderr, "traced session failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    if (!obs::WriteChromeTrace(sink, trace_path)) return 1;
    std::printf(
        "\nwrote %s (%zu trace events) -- load it in Perfetto or\n"
        "chrome://tracing. Timeline of the first query:\n\n%s",
        trace_path.c_str(), sink.size(),
        obs::ExplainQuery(sink, 0).c_str());
  }
  return 0;
}
